//! Cross-crate integration: the end-to-end trust chain — secure boot,
//! attestation gating the PAEB offload, the robustness monitor running
//! inside an enclave, and PMP-confined payloads on the simulated SoC.

use vedliot::nnir::exec::{RunOptions, Runner};
use vedliot::nnir::{zoo, Shape, Tensor};
use vedliot::recs::net::NetworkCondition;
use vedliot::safety::inject::flip_weight_bits;
use vedliot::safety::robustness::{OutputVerdict, RobustnessService};
use vedliot::socsim::asm::assemble;
use vedliot::socsim::machine::Machine;
use vedliot::trust::attestation::{BootOutcome, RootOfTrust, SecureBootChain, Verifier};
use vedliot::trust::enclave::{Enclave, EnclaveConfig};
use vedliot::trust::hash::sha256;
use vedliot::usecases::paeb::{Decision, OffloadController, PaebConfig};

fn fast_paeb_config() -> PaebConfig {
    PaebConfig {
        car_latency_ms: 80.0,
        car_energy_j: 1.2,
        edge_latency_ms: 15.0,
        edge_energy_j: 2.5,
        frame_bytes: 300_000,
        tx_energy_j_per_byte: 60e-9,
        result_ms: 5.0,
    }
}

/// A compromised edge station never receives raw sensor data: the boot
/// measurement mismatch fails attestation and every frame stays local.
#[test]
fn compromised_edge_station_never_receives_frames() {
    // Released firmware vs what the attacker flashed.
    let mut chain = SecureBootChain::new();
    chain.add_stage("runtime", b"edge-stack-v4");
    let compromised = chain.boot(&[b"edge-stack-v4-with-rootkit".as_slice()]);
    assert!(matches!(compromised, BootOutcome::Halted { .. }));

    // Even if the attacker bypasses the halt and attests with the wrong
    // measurement, the verifier rejects it.
    let rot = RootOfTrust::provision(b"edge-9");
    let mut verifier = Verifier::new();
    verifier.enroll(&rot);
    verifier.expect_measurement(sha256(b"edge-stack-v4"));
    let mut controller = OffloadController::new(fast_paeb_config());
    let attested = controller.attest_edge(&mut verifier, &rot, sha256(b"rootkit-stack"));
    assert!(!attested);
    let (decision, _) = controller.decide(&NetworkCondition::good(), 50.0);
    assert_eq!(decision, Decision::Local);
}

/// The §IV-B robustness service hosted inside an SGX-style enclave: the
/// golden model copy is isolated from the fault that corrupted the
/// deployed model, and the check still detects the divergence.
#[test]
fn enclave_hosted_robustness_service_detects_corruption() {
    let golden = zoo::lenet5(10).unwrap();
    let input = Tensor::random(Shape::nchw(1, 1, 28, 28), 31, 1.0);

    // The deployed model suffers bit flips in the field.
    let mut deployed = golden.clone();
    flip_weight_bits(&mut deployed, 40, 13).unwrap();
    let claimed = Runner::builder()
        .build(&deployed)
        .unwrap()
        .execute(std::slice::from_ref(&input), RunOptions::default())
        .unwrap()
        .into_outputs()
        .remove(0);

    // The monitor lives inside an enclave; the whole verification runs
    // under an ecall, charged with transition costs.
    let mut enclave = Enclave::create(b"robustness-monitor-v1", EnclaveConfig::default());
    let mut service = RobustnessService::new(golden, 1, 1e-4);
    let verdict = enclave
        .ecall(4 * 1024, || service.submit(&input, &claimed))
        .unwrap();
    assert!(matches!(verdict, OutputVerdict::Diverged { .. }));
    assert_eq!(enclave.stats().ecalls, 1);

    // Sealed model identity survives a restart: seal + unseal round trip.
    let sealed = enclave.seal(b"golden-model-digest");
    assert_eq!(
        enclave.unseal(&sealed).as_deref(),
        Some(b"golden-model-digest".as_slice())
    );
}

/// PMP isolation on the simulated SoC composes with a CFU-accelerated
/// payload: the user-mode ML kernel runs, but cannot escape its region.
#[test]
fn pmp_confined_cfu_payload() {
    use vedliot::socsim::MacCfu;

    let firmware = assemble(
        r#"
        la   t0, handler
        csrrw x0, mtvec, t0
        li   t0, 0x0FFF          # 0..0x7FFF R+X (code)
        csrrw x0, pmpaddr0, t0
        li   t0, 0x21FF          # 0x8000..0x8FFF R+W (data)
        csrrw x0, pmpaddr1, t0
        li   t0, 0x1B1D
        csrrw x0, pmpcfg0, t0
        csrrw x0, mstatus, x0
        la   t0, user
        csrrw x0, mepc, t0
        mret
    user:
        # CFU MAC on packed int8 lanes, data in the granted region.
        li   t1, 0x8000
        li   t2, 0x02020202
        sw   t2, 0(t1)
        lw   a1, 0(t1)
        li   a2, 0x03030303
        cfu1 x0, x0, x0
        cfu0 a0, a1, a2          # acc = 4 * 2*3 = 24
        # Now violate the PMP: write outside the data region.
        li   t1, 0xA000
        sw   a0, 0(t1)
        ebreak                   # never reached
    handler:
        csrrs a3, mcause, x0
        ebreak
    "#,
    )
    .unwrap();

    let mut machine = Machine::new(64 * 1024).with_cfu(MacCfu::new());
    machine.load_firmware(&firmware, 0).unwrap();
    machine.run(10_000).unwrap();
    assert_eq!(machine.cpu().reg(10), 24, "CFU result computed in U-mode");
    assert_eq!(machine.cpu().reg(13), 7, "store access fault trapped");
    assert!(machine.cpu().pmp_checks > 0);
}

/// Quote freshness: a replayed attestation is rejected even when
/// everything else matches (distributed attestation hygiene).
#[test]
fn attestation_replay_is_rejected_at_scale() {
    use vedliot::trust::attestation::attest;

    let measurement = sha256(b"fleet-firmware-v9");
    let mut verifier = Verifier::new();
    let mut devices = Vec::new();
    for i in 0..5 {
        let rot = RootOfTrust::provision(format!("device-{i}").as_bytes());
        verifier.enroll(&rot);
        devices.push(rot);
    }
    verifier.expect_measurement(measurement);

    // Every device attests once.
    let mut reports = Vec::new();
    for rot in &devices {
        let nonce = verifier.challenge();
        let report = attest(rot, measurement, nonce);
        assert!(verifier.verify(&report));
        reports.push(report);
    }
    // Replays all fail.
    for report in &reports {
        assert!(!verifier.verify(report));
    }
}
