//! Cross-crate integration: the optimization toolchain feeding the
//! accelerator models (the §III pipeline end to end).

use vedliot::accel::catalog::catalog;
use vedliot::nnir::dataset::gaussian_prototypes;
use vedliot::nnir::train::{mlp, train_mlp, TrainConfig};
use vedliot::nnir::{zoo, Shape};
use vedliot::toolchain::passes::{
    ConvertFp16, FuseConvBn, PassManager, PruneNeurons, QuantizeInt8,
};
use vedliot::toolchain::{benchmark_deployment, deep_compress, CompressionConfig};

/// Train → compress → deploy on an MCU-class target, quality measured
/// throughout (the full Kenning flow).
#[test]
fn train_compress_deploy_keeps_quality() {
    let data = gaussian_prototypes(&Shape::nf(1, 48), 4, 50, 3.0, 17);
    let mut model = mlp("sensor-classifier", 48, &[32, 16], 4).unwrap();
    let float_acc = train_mlp(&mut model, &data, &TrainConfig::default()).unwrap();
    assert!(float_acc > 0.9);

    // Deep Compression; this model is small, so codebooks and raw bias
    // storage amortize poorly — the headline ratios live in
    // `paper_claims.rs` on a larger model with masked retraining.
    let (compressed, report) = deep_compress(&model, &CompressionConfig::default()).unwrap();
    assert!(report.ratio() > 5.0, "ratio {:.1}", report.ratio());

    // Deploy the compressed model on the Ethos-class MCU target with
    // INT8 quantization; verify quality end to end.
    let db = catalog();
    let target = db.find("Ethos-U55").unwrap();
    let mut pipeline = PassManager::new();
    pipeline.push(QuantizeInt8::new());
    let deployment = benchmark_deployment(compressed, &pipeline, target, Some(&data)).unwrap();
    let q = deployment.quality.expect("quality measured");
    assert!(
        q.accuracy > float_acc - 0.1,
        "deployed accuracy {} vs float {float_acc}",
        q.accuracy
    );
    assert!(deployment.latency_ms > 0.0);
    assert!(deployment.avg_power_w <= target.tdp_w);
}

/// Structured pruning halves the hidden layer and the deployed weight
/// memory actually shrinks (structure, unlike sparsity, is visible to
/// dense hardware).
#[test]
fn neuron_pruning_shrinks_deployment_memory() {
    let data = gaussian_prototypes(&Shape::nf(1, 32), 3, 40, 3.0, 23);
    let mut model = mlp("m", 32, &[64], 3).unwrap();
    train_mlp(&mut model, &data, &TrainConfig::default()).unwrap();

    let db = catalog();
    let target = db.find("Myriad").unwrap();
    let empty = PassManager::new();
    let baseline = benchmark_deployment(model.clone(), &empty, target, None).unwrap();

    let mut pipeline = PassManager::new();
    pipeline.push(PruneNeurons::new(0.5));
    let pruned = benchmark_deployment(model, &pipeline, target, Some(&data)).unwrap();
    assert!(
        pruned.weight_bytes < baseline.weight_bytes * 3 / 4,
        "structured pruning must shrink memory: {} vs {}",
        pruned.weight_bytes,
        baseline.weight_bytes
    );
    assert!(pruned.quality.unwrap().accuracy > 0.8);
}

/// The §III warning quantified: MobileNetV3 has ~18x fewer MACs than
/// ResNet-50, but on a bandwidth-limited target the modelled speedup is
/// far smaller — "theoretical speed-ups do not always translate".
#[test]
fn theoretical_speedup_does_not_translate() {
    use vedliot::accel::perf::PerfModel;
    use vedliot::nnir::cost::CostReport;

    let resnet = zoo::resnet50(1000).unwrap();
    let mobilenet = zoo::mobilenet_v3_large(1000).unwrap();
    let flop_ratio = CostReport::of(&resnet).unwrap().total_macs as f64
        / CostReport::of(&mobilenet).unwrap().total_macs as f64;
    assert!(flop_ratio > 10.0, "MAC ratio {flop_ratio}");

    let db = catalog();
    let gpu = PerfModel::new(db.find("GTX 1660").unwrap().clone());
    let resnet_ms = gpu.run(&resnet).unwrap().latency_ms;
    let mobilenet_ms = gpu.run(&mobilenet).unwrap().latency_ms;
    let actual_ratio = resnet_ms / mobilenet_ms;
    assert!(
        actual_ratio < flop_ratio / 2.0,
        "modelled speedup {actual_ratio:.1}x should fall far short of the {flop_ratio:.1}x MAC ratio"
    );
}

/// Pass ordering ablation: fusing before quantization preserves outputs
/// and both orders produce valid graphs of identical topology.
#[test]
fn pass_ordering_ablation() {
    let model = zoo::tiny_cnn("cam", Shape::nchw(1, 3, 32, 32), &[8, 16], 4).unwrap();

    let mut fuse_first = PassManager::new();
    fuse_first.push(FuseConvBn::new());
    fuse_first.push(QuantizeInt8::new());
    let (a, _) = fuse_first.run(model.clone()).unwrap();

    let mut quant_first = PassManager::new();
    quant_first.push(QuantizeInt8::new());
    quant_first.push(FuseConvBn::new());
    let (b, _) = quant_first.run(model).unwrap();

    a.validate().unwrap();
    b.validate().unwrap();
    // Same structure either way (BN gone), weights differ slightly:
    // quantize-then-fuse denormalizes the INT8 grid — the reason real
    // toolchains fuse first.
    assert_eq!(a.nodes().len(), b.nodes().len());
}

/// FP16 conversion composes with the rest of the pipeline.
#[test]
fn fp16_pipeline_on_fp16_target() {
    let model = zoo::tiny_cnn("cam", Shape::nchw(1, 3, 32, 32), &[8, 16], 4).unwrap();
    let db = catalog();
    let target = db.find("Jetson TX2").unwrap(); // FP16-best platform
    let mut pipeline = PassManager::new();
    pipeline.push(FuseConvBn::new());
    pipeline.push(ConvertFp16::new());
    let report = benchmark_deployment(model, &pipeline, target, None).unwrap();
    assert_eq!(report.precision.to_string(), "FP16");
    assert_eq!(report.pass_log.len(), 2);
}
