//! Cross-crate integration: the §IV-B safety mechanisms guarding the §V
//! industrial use cases — input monitors screening the motor-box sensor
//! stream, the hybridization kernel supervising the arc detector, and
//! redundant-channel voting.

use vedliot::safety::hybrid::{majority_vote, Decision, SafetyKernel};
use vedliot::safety::inject::{inject_sensor_fault, SensorFault};
use vedliot::safety::monitors::{
    DriftMonitor, RangeMonitor, SampleMonitor, StuckAtMonitor, ZScoreMonitor,
};
use vedliot::usecases::arc::{synthesize_current, ArcDetector};
use vedliot::usecases::motor::{synthesize_window, MotorCondition};

/// The motor box's input monitors catch a stuck vibration sensor before
/// the classifier ever sees the window (the §IV-B "characterizing the
/// quality of the input data" direction).
#[test]
fn stuck_vibration_sensor_is_screened_out() {
    let (vibration, _) = synthesize_window(MotorCondition::Healthy, 5);
    let mut monitor = StuckAtMonitor::new(8);
    // Healthy window passes.
    assert!(vibration.iter().all(|&x| monitor.observe(x).is_ok()));
    monitor.reset();
    // The same window with a stuck-at fault from sample 100 is flagged.
    let faulty = inject_sensor_fault(&vibration, SensorFault::StuckAt { start: 100 }, 0);
    let flagged = faulty
        .iter()
        .filter(|&&x| !monitor.observe(x).is_ok())
        .count();
    assert!(
        flagged > 50,
        "stuck tail must be flagged ({flagged} samples)"
    );
}

/// Slow temperature-sensor drift — invisible to range checks — is caught
/// by the drift monitor.
#[test]
fn temperature_drift_evades_range_but_not_drift_monitor() {
    let (_, temperature) = synthesize_window(MotorCondition::Healthy, 7);
    let drifted = inject_sensor_fault(
        &temperature,
        SensorFault::Drift {
            start: 0,
            slope: 0.05,
        },
        0,
    );
    let mut range = RangeMonitor::new(-40.0, 125.0);
    let mut drift = DriftMonitor::new(32, 0.5);
    let range_flags = drifted
        .iter()
        .filter(|&&x| !range.observe(x).is_ok())
        .count();
    let drift_flags = drifted
        .iter()
        .filter(|&&x| !drift.observe(x).is_ok())
        .count();
    assert_eq!(range_flags, 0, "drift stays inside the physical range");
    assert!(drift_flags > 0, "the drift monitor must flag the ramp");
}

/// The arc detector runs under a safety kernel: a mis-sized trip command
/// (payload bug) is overridden by the safe action (open the breaker).
#[test]
fn arc_detector_under_hybridization_kernel() {
    // Action: Some(feeder index to open) — the kernel's invariant caps
    // the feeder index at the cabinet's 8 feeders; safe action opens the
    // main breaker (feeder 0).
    let mut kernel = SafetyKernel::new(Some(0usize), 2_000, |_obs: &usize, action| match action {
        Some(feeder) if *feeder >= 8 => Err(format!("feeder {feeder} does not exist")),
        _ => Ok(()),
    });

    // Healthy decision: arc on feeder 3, detector proposes opening it.
    let waveform = synthesize_current(8_192, Some(4_000), 3, 3);
    let detector = ArcDetector::new(32, 0.4);
    let decision = kernel.cycle(&waveform.feeder, |&feeder| {
        let d = detector.detect(&waveform);
        if d.tripped {
            Ok((Some(feeder), 200))
        } else {
            Ok((None, 200))
        }
    });
    assert_eq!(decision, Decision::Accepted(Some(3)));

    // Buggy payload proposes a nonexistent feeder: the kernel opens the
    // main breaker instead of doing nothing.
    let decision = kernel.cycle(&3, |_| Ok((Some(42), 200)));
    assert!(decision.overridden());
    assert_eq!(*decision.action(), Some(0));
    assert_eq!(kernel.stats().invariant_overrides, 1);
}

/// Redundant arc detectors vote: one corrupted channel (noise-injected
/// waveform) cannot override the two healthy ones.
#[test]
fn redundant_arc_channels_vote_out_a_faulty_sensor() {
    let clean = synthesize_current(8_192, None, 0, 21);
    let detector = ArcDetector::new(32, 0.4);
    // Channels 1 & 2 see the clean current; channel 3's sensor is noisy
    // enough to false-trip.
    let noisy_samples = inject_sensor_fault(&clean.samples, SensorFault::Noise { sigma: 0.8 }, 9);
    let noisy = vedliot::usecases::arc::ArcWaveform {
        samples: noisy_samples,
        arc_start: None,
        feeder: 0,
    };
    let votes: Vec<usize> = [&clean, &clean, &noisy]
        .iter()
        .map(|w| usize::from(detector.detect(w).tripped))
        .collect();
    assert_eq!(votes[2], 1, "the noisy channel false-trips on its own");
    assert_eq!(
        majority_vote(&votes),
        Some(0),
        "2-of-3 voting suppresses it"
    );
}

/// The z-score monitor is calibrated so the bearing-fault signature —
/// which IS legitimate signal — does not get screened away as an input
/// fault (no false positive on the fault we want to classify).
#[test]
fn bearing_fault_signal_is_not_mistaken_for_sensor_fault() {
    let (vibration, _) = synthesize_window(MotorCondition::BearingFault, 11);
    let mut monitor = ZScoreMonitor::new(32, 8.0);
    let flagged = vibration
        .iter()
        .filter(|&&x| !monitor.observe(x).is_ok())
        .count();
    assert!(
        flagged < vibration.len() / 20,
        "bearing impulses must pass the input screen ({flagged} flagged)"
    );
}
