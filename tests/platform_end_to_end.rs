// Test/bench/example target: panics are the failure report.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Cross-crate integration: the RECS platform hosting real workloads —
//! chassis population, scheduling, fabric reconfiguration, failure
//! recovery and the Smart Mirror deployment.

use vedliot::nnir::zoo;
use vedliot::recs::chassis::Chassis;
use vedliot::recs::fabric::{Fabric, LinkKind};
use vedliot::recs::module::standard_microservers;
use vedliot::recs::scheduler::{place, replace_after_failure, Workload};
use vedliot::usecases::mirror::{deploy_mirror, mirror_chassis};

fn module(name: &str) -> vedliot::recs::module::Microserver {
    standard_microservers()
        .into_iter()
        .find(|m| m.name.contains(name))
        .expect("standard module")
}

/// A heterogeneous t.RECS: GPU for the heavy detector, and the fabric
/// reconfigured at run time when the camera stream outgrows 1G.
#[test]
fn heterogeneous_edge_node_with_fabric_reconfiguration() {
    let mut chassis = Chassis::t_recs();
    chassis.insert(0, module("COMHPC-GTX1660")).unwrap();

    let detector = Workload {
        name: "yolo-detector".into(),
        model: zoo::yolov4(416, 80).unwrap(),
        latency_bound_ms: 100.0,
        rate_ips: 10.0,
    };
    let placement = place(&chassis, &[detector]).unwrap();
    assert!(placement.complete());

    // The camera feeds ~25 MB/s; over 1G Ethernet a 1 MiB burst takes
    // ~9 ms, over the reconfigured 10G link under 1 ms.
    let mut fabric = Fabric::full_mesh(chassis.slot_count(), LinkKind::Eth1G);
    let slow = fabric.transfer_us(0, 1, 1 << 20).unwrap();
    let event = fabric.reconfigure(0, 1, Some(LinkKind::Eth10G));
    assert!(event.apply_us < 10_000.0, "reconfiguration is fast");
    let fast = fabric.transfer_us(0, 1, 1 << 20).unwrap();
    assert!(
        fast < slow / 5.0,
        "10G must be >5x faster: {fast} vs {slow}"
    );
}

/// Slot failure: the scheduler re-places every workload on survivors and
/// the placement stays within budget.
#[test]
fn failure_recovery_preserves_service() {
    let mut chassis = Chassis::recs_box();
    chassis.insert(0, module("CXP-EPYC-3451")).unwrap();
    chassis.insert(1, module("CXP-D1577")).unwrap();

    let workloads = vec![Workload {
        name: "classifier".into(),
        model: zoo::mobilenet_v3_large(100).unwrap(),
        latency_bound_ms: 200.0,
        rate_ips: 3.0,
    }];
    let before = place(&chassis, &workloads).unwrap();
    assert!(before.complete());
    let failed = before.assignments[0].slot;

    let after = replace_after_failure(&mut chassis, failed, &workloads).unwrap();
    assert!(after.complete(), "survivor must host the workload");
    assert_ne!(after.assignments[0].slot, failed);
    assert!(chassis.used_power_w() <= chassis.power_budget_w());
}

/// The uRECS budget is a real constraint: the scheduler refuses loads
/// the 15 W node cannot serve, rather than overcommitting.
#[test]
fn urecs_refuses_overcommitment() {
    let chassis = mirror_chassis();
    let impossible = vec![Workload {
        name: "cloud-class-detector".into(),
        model: zoo::yolov4(608, 80).unwrap(),
        latency_bound_ms: 5.0, // nothing embedded meets 5 ms on YOLOv4-608
        rate_ips: 30.0,
    }];
    let placement = place(&chassis, &impossible).unwrap();
    assert!(!placement.complete());
}

/// The full Smart Mirror deployment remains viable after re-running on a
/// differently populated chassis (second slot adds headroom).
#[test]
fn mirror_scales_with_extra_module() {
    let mut chassis = mirror_chassis();
    // No second module fits the remaining budget (15 W NX fills it), so
    // first check the single-node deployment ...
    let single = deploy_mirror(&chassis).unwrap();
    assert!(single.viable());
    // ... then swap the NX for a ZU3 + Myriad pair and redeploy.
    let _ = chassis.remove(0).unwrap();
    chassis.insert(0, module("SMARC-ZU3")).unwrap();
    chassis.insert(1, module("Myriad")).unwrap();
    let dual = deploy_mirror(&chassis).unwrap();
    assert!(
        dual.placement.complete(),
        "unplaced on ZU3+Myriad: {:?}",
        dual.placement.unplaced
    );
    // Both configurations stay inside the uRECS envelope.
    assert!(dual.workload_power_w <= dual.budget_w);
}

/// Fig. 2 coverage: every chassis family accepts at least one standard
/// module, and jointly they cover all form factors.
#[test]
fn fig2_matrix_is_fully_covered() {
    use std::collections::HashSet;
    use vedliot::recs::module::FormFactor;

    let chassis = [Chassis::recs_box(), Chassis::t_recs(), Chassis::urecs()];
    let mut covered: HashSet<FormFactor> = HashSet::new();
    for c in &chassis {
        assert!(!c.supported_form_factors().is_empty());
        covered.extend(c.supported_form_factors());
    }
    for ff in FormFactor::ALL {
        assert!(covered.contains(&ff), "{ff} not hosted by any chassis");
    }
}
