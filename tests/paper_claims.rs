//! The paper's headline quantitative claims, each asserted end to end.
//! EXPERIMENTS.md records the measured values next to the paper's.

use vedliot::accel::catalog::catalog;
use vedliot::accel::perf::PerfModel;
use vedliot::nnir::dataset::gaussian_prototypes;
use vedliot::nnir::train::{mlp, train_mlp, TrainConfig};
use vedliot::nnir::{zoo, Shape};
use vedliot::toolchain::{deep_compress, CompressionConfig};

/// Fig. 3: "most architectures cluster around an energy efficiency of
/// about 1 TOPS/W, independent of their individual performance".
#[test]
fn fig3_one_tops_per_watt_cluster() {
    let db = catalog();
    let gm = db.geometric_mean_tops_per_watt();
    assert!(
        (0.3..3.0).contains(&gm),
        "geometric mean {gm:.2} TOPS/W should cluster around 1"
    );
    // And the power range spans milliwatts to > 400 W as the text says.
    let min = db
        .entries()
        .iter()
        .map(|e| e.tdp_w)
        .fold(f64::INFINITY, f64::min);
    let max = db.entries().iter().map(|e| e.tdp_w).fold(0.0, f64::max);
    assert!(min < 0.01 && max >= 400.0);
}

/// Fig. 4 shape: YoloV4 across the ten platforms at B1/B4/B8 — the GPU
/// leads, batch helps GPUs far more than CPUs, low-power parts sit at
/// the bottom in GOPS but not in efficiency.
#[test]
fn fig4_yolov4_shape() {
    let db = catalog();
    let yolo = zoo::yolov4(416, 80).unwrap();
    let batches = [1usize, 4, 8];

    let run = |name: &str, b: usize| {
        PerfModel::new(db.find(name).unwrap().clone())
            .run(&yolo.with_batch(b).unwrap())
            .unwrap()
    };

    // GPU beats both CPUs at every batch size.
    for &b in &batches {
        let gpu = run("GTX 1660", b);
        for cpu in ["EPYC 3451", "Pentium D1577"] {
            let c = run(cpu, b);
            assert!(
                gpu.achieved_gops > c.achieved_gops,
                "B{b}: GTX {} vs {cpu} {}",
                gpu.achieved_gops,
                c.achieved_gops
            );
        }
    }

    // Batch scaling: strong on GPU, weak on CPU, weak on FPGA.
    let gain = |name: &str| run(name, 8).achieved_gops / run(name, 1).achieved_gops;
    assert!(gain("GTX 1660") > 1.8);
    assert!(gain("EPYC 3451") < 1.3);
    assert!(gain("Zynq ZU15") < 1.3);

    // Power modes: AGX 30W outperforms AGX 10W but draws more.
    let hi = run("Xavier AGX (30W)", 4);
    let lo = run("Xavier AGX (10W)", 4);
    assert!(hi.achieved_gops > lo.achieved_gops);
    assert!(hi.avg_power_w > lo.avg_power_w);

    // The Myriad achieves the best efficiency of the Fig. 4 set at B1.
    let myriad = run("Myriad X", 1);
    for name in ["EPYC 3451", "Pentium D1577", "GTX 1660"] {
        assert!(myriad.gops_per_watt() > run(name, 1).gops_per_watt());
    }
}

/// §III: "models have been compressed down to 49x of their original
/// size, with negligible accuracy loss" (Deep Compression). Our
/// FC-dominated model reaches an order-of-magnitude+ ratio with < 8 pp
/// accuracy loss; the exact factor is recorded in EXPERIMENTS.md.
#[test]
fn deep_compression_ratio_and_accuracy() {
    use vedliot::nnir::train::evaluate;
    use vedliot::toolchain::passes::{Pass, PruneConnections};

    let data = gaussian_prototypes(&Shape::nf(1, 96), 5, 60, 3.0, 41);
    let mut model = mlp("compress-target", 96, &[64, 32], 5).unwrap();
    let base_acc = train_mlp(&mut model, &data, &TrainConfig::default()).unwrap();

    // Deep Compression's actual pipeline: prune, then *retrain the
    // surviving connections* (masked), then cluster + Huffman.
    let (mut pruned, _) = PruneConnections::new(0.92).run(model).unwrap();
    train_mlp(
        &mut pruned,
        &data,
        &TrainConfig {
            epochs: 15,
            freeze_zeros: true,
            ..TrainConfig::default()
        },
    )
    .unwrap();

    let (compressed, report) = deep_compress(
        &pruned,
        &CompressionConfig {
            sparsity: 0.92,
            cluster_bits: 5,
            ..CompressionConfig::default()
        },
    )
    .unwrap();
    let ratio = report.ratio();
    let acc = evaluate(&compressed, &data).unwrap().accuracy();
    assert!(ratio > 10.0, "compression ratio {ratio:.1}x");
    assert!(
        acc > base_acc - 0.08,
        "accuracy {acc:.3} vs base {base_acc:.3} after {ratio:.1}x compression"
    );
}

/// §IV-C (Twine): "SQLite can be fully executed inside an SGX enclave
/// via WebAssembly … with small performance overheads".
#[test]
fn twine_small_enclave_overhead() {
    use vedliot::trust::enclave::EnclaveConfig;
    use vedliot::trust::kvdb::{run_workload, WorkloadConfig};

    let cmp = run_workload(
        &WorkloadConfig {
            inserts: 1_000,
            gets: 100,
            scans: 3,
        },
        EnclaveConfig::default(),
    )
    .unwrap();
    // All three configurations compute the same result.
    assert_eq!(cmp.native.checksum, cmp.wasm.checksum);
    assert_eq!(cmp.native.checksum, cmp.wasm_enclave.checksum);
    // The enclave adds little on top of the runtime itself.
    assert!(
        cmp.enclave_overhead() < 3.0,
        "enclave overhead {:.2}x should be small",
        cmp.enclave_overhead()
    );
}

/// §II-B: the CFU accelerates the quantized ML kernel on the simulated
/// core (the Renode + CFU workflow).
#[test]
fn cfu_speeds_up_int8_kernel() {
    use vedliot::socsim::asm::assemble;
    use vedliot::socsim::machine::Machine;
    use vedliot::socsim::MacCfu;

    let scalar = assemble(
        r#"
        li s0, 0x1000
        li s2, 64
        li a0, 0
        li t0, 0
    loop:
        lb t1, 0(s0)
        lb t2, 256(s0)
        mul t3, t1, t2
        add a0, a0, t3
        addi s0, s0, 1
        addi t0, t0, 1
        blt t0, s2, loop
        ebreak
    "#,
    )
    .unwrap();
    let cfu = assemble(
        r#"
        li s0, 0x1000
        li s2, 16
        cfu1 x0, x0, x0
        li t0, 0
    loop:
        lw t1, 0(s0)
        lw t2, 256(s0)
        cfu0 a0, t1, t2
        addi s0, s0, 4
        addi t0, t0, 1
        blt t0, s2, loop
        ebreak
    "#,
    )
    .unwrap();

    let data: Vec<u8> = (0..512).map(|i| (i % 7) as u8).collect();
    let mut m1 = Machine::new(64 * 1024);
    m1.bus_mut().write_bytes(0x1000, &data).unwrap();
    m1.load_firmware(&scalar, 0).unwrap();
    let scalar_cycles = m1.run(1_000_000).unwrap();

    let mut m2 = Machine::new(64 * 1024).with_cfu(MacCfu::new());
    m2.bus_mut().write_bytes(0x1000, &data).unwrap();
    m2.load_firmware(&cfu, 0).unwrap();
    let cfu_cycles = m2.run(1_000_000).unwrap();

    assert_eq!(m1.cpu().reg(10), m2.cpu().reg(10), "same dot product");
    let speedup = scalar_cycles as f64 / cfu_cycles as f64;
    assert!(speedup > 3.0, "CFU speedup {speedup:.1}x");
}

/// §IV-A: the framework's dependency rule eliminates ~70% of potential
/// view-pair couplings on the full 13×4 grid.
#[test]
fn framework_complexity_reduction() {
    let r = vedliot::reqeng::complexity_reduction(13, 4);
    assert!((0.65..0.75).contains(&r), "reduction {r:.2}");
}
