#!/usr/bin/env bash
# Repo CI gate: tier-1 verification plus lint/format checks.
#
#   ./ci.sh            # everything (what the driver runs)
#   ./ci.sh --fast     # skip the release build (lints + tests only)
#   ./ci.sh --deep     # everything, plus deep-bound interleaving model
#                      # checks and (nightly-only) sanitizer runs
#
# Tier-1 (ROADMAP.md): cargo build --release && cargo test -q
set -euo pipefail
cd "$(dirname "$0")"

fast=0
deep=0
[[ "${1:-}" == "--fast" ]] && fast=1
[[ "${1:-}" == "--deep" ]] && deep=1

echo "==> repo hygiene"
# The harness prints to stdout; its output is recorded in EXPERIMENTS.md,
# never checked in raw. This file was deleted once already — keep it gone.
if [[ -e harness_output.txt ]]; then
  echo "ERROR: stale harness_output.txt reappeared; record results in EXPERIMENTS.md instead" >&2
  exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $fast -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

echo "==> serving smoke test (100 requests, zero lost)"
cargo test -q -p vedliot-serve --test serving smoke_100_requests_zero_lost

echo "==> chaos smoke test (200 requests, seeded fault plan, availability >= 0.95)"
cargo test -q -p vedliot-serve --test chaos smoke_200_requests_under_seeded_chaos

echo "==> observability smoke test (traced 50-request run, exact span accounting, exporter goldens)"
cargo test -q -p vedliot-serve --test observe

echo "==> routing smoke test (multi-tenant isolation, priority admission, bit-identity)"
cargo test -q -p vedliot-serve --test routing

echo "==> fleet smoke test (seeded hostile OTA rollout converges to a safe state)"
cargo test -q -p vedliot-fleet --test fleet hostile_plan_converges_to_a_safe_state_and_every_defense_fires

echo "==> SLO smoke test (burn-driven incident: exact causal accounting, deterministic replay)"
cargo test -q -p vedliot-serve --test slo

if [[ $fast -eq 0 ]]; then
  echo "==> kernel perf gate (E24 batched per-sample conv cost vs recorded baseline)"
  # BENCH_pr6.json is the checked-in snapshot from `harness kernels`.
  # Regenerate a fresh snapshot and fail if the E21 cliff metric
  # (per-sample cost at batch 8 relative to batch 1) regressed above the
  # recorded baseline with 30% timing-noise headroom.
  baseline=$(sed 's/.*"name":"b8_over_b1"[^}]*"value"://;s/}.*//' BENCH_pr6.json)
  BENCH_OUT=target/BENCH_pr6.json ./target/release/harness kernels > /dev/null
  fresh=$(sed 's/.*"name":"b8_over_b1"[^}]*"value"://;s/}.*//' target/BENCH_pr6.json)
  echo "    b8/b1 per-sample cost: baseline ${baseline}, fresh ${fresh}"
  awk -v f="$fresh" -v b="$baseline" 'BEGIN {
    limit = b * 1.30; if (limit < 1.0) limit = 1.0;
    if (f > limit) {
      printf "ERROR: batched per-sample conv cost regressed: %s > limit %.3f (baseline %s)\n", f, limit, b;
      exit 1;
    }
  }'

  echo "==> routing availability gate (E25 per-priority availability vs recorded baseline)"
  # BENCH_pr7.json is the checked-in snapshot from `harness routing`.
  # The E25 run asserts the admission contract internally (high >= 0.98,
  # batch shed first, bit-identity); the gate re-checks the fresh
  # high-priority availability against both the hard floor and the
  # recorded baseline with 2% scheduling-noise headroom.
  baseline=$(sed 's/.*"labels":{"priority":"high"},"type":"gauge","value"://;s/}.*//' BENCH_pr7.json)
  BENCH_OUT=target/BENCH_pr7.json ./target/release/harness routing > /dev/null
  fresh=$(sed 's/.*"labels":{"priority":"high"},"type":"gauge","value"://;s/}.*//' target/BENCH_pr7.json)
  echo "    high-priority availability: baseline ${baseline}, fresh ${fresh}"
  awk -v f="$fresh" -v b="$baseline" 'BEGIN {
    floor = b - 0.02; if (floor < 0.98) floor = 0.98;
    if (f < floor) {
      printf "ERROR: high-priority availability regressed: %s < floor %.3f (baseline %s)\n", f, floor, b;
      exit 1;
    }
  }'

  echo "==> fleet rollout gate (E26 OTA convergence/availability vs recorded baseline)"
  # BENCH_pr8.json is the checked-in snapshot from `harness fleet`. The
  # E26 run asserts the hard safety invariants internally (safe-state
  # audit, quarantine containment, canary blast radius, >=5% crash
  # coverage); the rollout is fully seeded, so the gate holds the fresh
  # run to the recorded availability (small headroom for float noise)
  # and to the exact deterministic rollback counts.
  base_avail=$(sed 's/.*"name":"availability"[^}]*"value"://;s/}.*//' BENCH_pr8.json)
  # convergence_ticks carries a labels object, so match through its
  # closing brace rather than relying on [^}]* reaching "value".
  base_ticks=$(sed 's/.*"name":"convergence_ticks"[^}]*},"type":"gauge","value"://;s/}.*//' BENCH_pr8.json)
  BENCH_OUT=target/BENCH_pr8.json ./target/release/harness fleet > /dev/null
  fresh_avail=$(sed 's/.*"name":"availability"[^}]*"value"://;s/}.*//' target/BENCH_pr8.json)
  fresh_ticks=$(sed 's/.*"name":"convergence_ticks"[^}]*},"type":"gauge","value"://;s/}.*//' target/BENCH_pr8.json)
  fresh_wave_rb=$(sed 's/.*"name":"wave_rollbacks"[^}]*"value"://;s/}.*//' target/BENCH_pr8.json)
  fresh_bad_rb=$(sed 's/.*"name":"bad_wave_rollbacks"[^}]*"value"://;s/}.*//' target/BENCH_pr8.json)
  echo "    availability: baseline ${base_avail}, fresh ${fresh_avail}; convergence ticks: baseline ${base_ticks}, fresh ${fresh_ticks}"
  awk -v fa="$fresh_avail" -v ba="$base_avail" -v ft="$fresh_ticks" -v bt="$base_ticks" \
      -v wrb="$fresh_wave_rb" -v brb="$fresh_bad_rb" 'BEGIN {
    if (fa < ba - 0.01) {
      printf "ERROR: rollout availability regressed: %s < %.4f (baseline %s)\n", fa, ba - 0.01, ba;
      exit 1;
    }
    if (ft > bt * 1.10) {
      printf "ERROR: rollout convergence slowed: %s ticks > limit %.0f (baseline %s)\n", ft, bt * 1.10, bt;
      exit 1;
    }
    if (wrb != 0) {
      printf "ERROR: healthy release wave-rolled-back %s times (must be 0)\n", wrb;
      exit 1;
    }
    if (brb != 1) {
      printf "ERROR: bad release saw %s wave rollbacks (must be exactly 1)\n", brb;
      exit 1;
    }
  }'

  echo "==> analyze sweep (liveness/value-range/quant-safety over the zoo)"
  # `lint --analyze` runs the dataflow analyses and the arena planner
  # over every zoo model; it exits non-zero on Error-severity findings
  # or an analysis failure.
  cargo run -q --release -p vedliot --bin vedliot -- lint --analyze > /dev/null

  echo "==> memory planner gate (E27 arena peak-memory reduction vs recorded baseline)"
  # BENCH_pr9.json is the checked-in snapshot from `harness memory`.
  # The E27 run asserts bit-identity and the 25% per-model bar
  # internally; the planner is deterministic, so the gate holds the
  # fresh reductions to the recorded baseline with a small float
  # headroom, never below the 0.25 acceptance bar.
  base_min=$(sed 's/.*"name":"min_conv_reduction"[^}]*"value"://;s/}.*//' BENCH_pr9.json)
  base_all=$(sed 's/.*"name":"overall_reduction"[^}]*"value"://;s/}.*//' BENCH_pr9.json)
  BENCH_OUT=target/BENCH_pr9.json ./target/release/harness memory > /dev/null
  fresh_min=$(sed 's/.*"name":"min_conv_reduction"[^}]*"value"://;s/}.*//' target/BENCH_pr9.json)
  fresh_all=$(sed 's/.*"name":"overall_reduction"[^}]*"value"://;s/}.*//' target/BENCH_pr9.json)
  echo "    min conv reduction: baseline ${base_min}, fresh ${fresh_min}; overall: baseline ${base_all}, fresh ${fresh_all}"
  awk -v fm="$fresh_min" -v bm="$base_min" -v fa="$fresh_all" -v ba="$base_all" 'BEGIN {
    floor = bm - 0.02; if (floor < 0.25) floor = 0.25;
    if (fm < floor) {
      printf "ERROR: weakest per-model arena reduction regressed: %s < floor %.3f (baseline %s)\n", fm, floor, bm;
      exit 1;
    }
    if (fa < ba - 0.02) {
      printf "ERROR: overall arena reduction regressed: %s < %.4f (baseline %s)\n", fa, ba - 0.02, ba;
      exit 1;
    }
  }'

  echo "==> flight-recorder/SLO gate (E28 overhead, causal exactness, alert determinism)"
  # BENCH_pr10.json is the checked-in snapshot from `harness slo`. The
  # E28 run asserts the accounting identities and two-run bit-identity
  # internally; the gate re-checks the fresh snapshot's hard invariants:
  # zero orphaned causes, zero broken chains, zero ring drops, exactly
  # one alert fired and cleared in the scripted incident, and the
  # full-stack observability tax under the 2x ceiling (timing-noisy, so
  # gated against the hard budget rather than the recorded baseline).
  base_ratio=$(sed 's/.*"name":"overhead_ratio"[^}]*"value"://;s/}.*//' BENCH_pr10.json)
  BENCH_OUT=target/BENCH_pr10.json ./target/release/harness slo > /dev/null
  fresh_ratio=$(sed 's/.*"name":"overhead_ratio"[^}]*"value"://;s/}.*//' target/BENCH_pr10.json)
  fresh_orphans=$(sed 's/.*"name":"journal_orphans"[^}]*"value"://;s/}.*//' target/BENCH_pr10.json)
  fresh_broken=$(sed 's/.*"name":"causal_mismatches"[^}]*"value"://;s/}.*//' target/BENCH_pr10.json)
  fresh_fired=$(sed 's/.*"name":"alerts_fired"[^}]*"value"://;s/}.*//' target/BENCH_pr10.json)
  fresh_cleared=$(sed 's/.*"name":"alerts_cleared"[^}]*"value"://;s/}.*//' target/BENCH_pr10.json)
  fresh_dropped=$(sed 's/.*"name":"fleet_journal_dropped"[^}]*"value"://;s/}.*//' target/BENCH_pr10.json)
  echo "    overhead ratio: baseline ${base_ratio}, fresh ${fresh_ratio}; orphans ${fresh_orphans}, broken chains ${fresh_broken}"
  awk -v r="$fresh_ratio" -v o="$fresh_orphans" -v c="$fresh_broken" \
      -v f="$fresh_fired" -v cl="$fresh_cleared" -v d="$fresh_dropped" 'BEGIN {
    if (r > 2.0) {
      printf "ERROR: full-stack observability tax blew the 2x budget: ratio %s\n", r;
      exit 1;
    }
    if (o != 0 || c != 0) {
      printf "ERROR: causal accounting not exact: %s orphaned causes, %s broken chains\n", o, c;
      exit 1;
    }
    if (f != 1 || cl != 1) {
      printf "ERROR: scripted incident alert counts drifted: %s fired / %s cleared (must be 1/1)\n", f, cl;
      exit 1;
    }
    if (d != 0) {
      printf "ERROR: fleet journal dropped %s events (ring must hold the rollout)\n", d;
      exit 1;
    }
  }'
fi

if [[ $deep -eq 1 ]]; then
  echo "==> deep: interleaving model check at enlarged bounds"
  INTERLEAVE_DEPTH=deep cargo test -q -p vedliot-serve --test interleave

  echo "==> deep: zoo lint sweep (error severity must be clean)"
  cargo run -q --release -p vedliot --bin vedliot -- lint > /dev/null

  # ThreadSanitizer needs -Z sanitizer, a nightly-only flag. The serve
  # crate's lock discipline is model-checked above on stable; when a
  # nightly toolchain is available, also run the real threads under TSan.
  if rustc --version | grep -q nightly; then
    echo "==> deep: ThreadSanitizer over the serve test suite"
    RUSTFLAGS="-Z sanitizer=thread" cargo test -q -p vedliot-serve \
      --target "$(rustc -vV | sed -n 's/host: //p')"
  else
    echo "==> deep: skipping ThreadSanitizer (requires a nightly toolchain; stable $(rustc --version | cut -d' ' -f2) active)"
  fi
fi

echo "CI green."
