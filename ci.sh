#!/usr/bin/env bash
# Repo CI gate: tier-1 verification plus lint/format checks.
#
#   ./ci.sh            # everything (what the driver runs)
#   ./ci.sh --fast     # skip the release build (lints + tests only)
#
# Tier-1 (ROADMAP.md): cargo build --release && cargo test -q
set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $fast -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

echo "CI green."
